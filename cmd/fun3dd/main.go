// Command fun3dd serves the solver over HTTP: a long-running multi-solve
// daemon in which N concurrent solves share one immutable cached mesh
// artifact and draw their mutable state from a recycling pool. Jobs are
// submitted, polled, streamed, canceled, evicted and resumed through a
// JSON API; a full queue answers 429 with Retry-After (backpressure).
//
// Examples:
//
//	fun3dd -mesh tiny -solves 4 -threads 2          # 4 x 2-way solves
//	fun3dd -addr :9090 -mesh c -queue 32 -order2
//
//	curl -d '{"alpha_deg":3.06,"max_steps":50}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/job-1/history       # NDJSON stream
//	curl -d '{"alphas":[0,1,2,3]}' localhost:8080/v1/polar
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fun3d"
	"fun3d/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		meshName = flag.String("mesh", "tiny", "mesh preset: tiny, c, d")
		scale    = flag.Float64("scale", 1, "scale the mesh vertex count by this factor")
		solves   = flag.Int("solves", 2, "concurrent solves (engine workers)")
		threads  = flag.Int("threads", 2, "worker threads per solve")
		queue    = flag.Int("queue", 16, "queued-job capacity (full queue answers 429)")
		retry    = flag.Duration("retry-after", time.Second, "Retry-After advertised on 429")
		steps    = flag.Int("steps", 200, "default max pseudo-time steps per job")
		order2   = flag.Bool("order2", true, "second-order residual with limiter")
		fused    = flag.Bool("fused", false, "cache-blocked fused residual pipeline (implies -order2)")
		staged   = flag.Bool("staged", false, "hierarchical staged residual pipeline (implies -order2)")
		dedup    = flag.Bool("dedup", false, "content-deduplicate the preconditioner block stores (bit-identical results)")
		warm     = flag.Bool("warm", true, "build the shared mesh artifact before serving")
	)
	flag.Parse()

	spec, err := meshSpec(*meshName, *scale)
	if err != nil {
		fatal(err)
	}
	if *fused && *staged {
		fatal(fmt.Errorf("-fused and -staged are mutually exclusive ladder rungs"))
	}
	cfg := fun3d.Optimized(*threads)
	cfg.SecondOrder = *order2 || *fused || *staged
	cfg.Limiter = cfg.SecondOrder
	cfg.Fused = *fused
	cfg.Staged = *staged
	cfg.Dedup = *dedup

	eng := service.NewEngine(service.EngineConfig{
		Mesh:            spec,
		Solver:          cfg,
		MaxConcurrent:   *solves,
		QueueDepth:      *queue,
		RetryAfter:      *retry,
		DefaultMaxSteps: *steps,
	})
	if *warm {
		fmt.Printf("building shared artifact for mesh %s (scale %.2f)...\n", *meshName, *scale)
		t0 := time.Now()
		if _, err := eng.Cache().Get(spec, cfg); err != nil {
			fatal(err)
		}
		fmt.Printf("  ready in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	srv := &http.Server{Addr: *addr, Handler: eng.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("fun3dd: serving on %s (%d solves x %d threads, queue %d)\n",
		*addr, *solves, *threads, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("fun3dd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		eng.Close()
	case err := <-errc:
		eng.Close()
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func meshSpec(name string, scale float64) (fun3d.MeshSpec, error) {
	var spec fun3d.MeshSpec
	switch name {
	case "tiny":
		spec = fun3d.MeshTiny()
	case "c":
		spec = fun3d.MeshC()
	case "d":
		spec = fun3d.MeshD()
	default:
		return spec, fmt.Errorf("unknown mesh preset %q (want tiny, c, d)", name)
	}
	if scale != 1 {
		spec = fun3d.ScaleMesh(spec, scale)
	}
	return spec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fun3dd:", err)
	os.Exit(1)
}
