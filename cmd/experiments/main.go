// Command experiments regenerates the paper's tables and figures: Table I,
// Table II, and Figures 5-11. Each experiment prints a "paper reference"
// line followed by the measured results, so the output doubles as the raw
// material for EXPERIMENTS.md.
//
// Examples:
//
//	experiments -exp all                      # everything, default sizes
//	experiments -exp fig6a -threads 16        # one experiment
//	experiments -exp fig9 -nodes 1,4,16,64,256 -large
//	experiments -quick                        # tiny meshes (CI smoke run)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"fun3d/internal/bench"
	"fun3d/internal/mesh"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, "+strings.Join(bench.Experiments(), ", "))
		threads  = flag.Int("threads", runtime.NumCPU(), "max threads for sweeps")
		quick    = flag.Bool("quick", false, "tiny meshes, short sweeps")
		large    = flag.Bool("large", false, "use Mesh-D' for the cluster experiments (slow)")
		nodes    = flag.String("nodes", "", "comma-separated node counts for fig9-11")
		rpn      = flag.Int("ranks-per-node", 0, "ranks per simulated node (default 4; paper used 16)")
		steps    = flag.Int("cluster-steps", 0, "pseudo-time steps per cluster run")
		cfl      = flag.Float64("cfl", 10, "initial CFL for solve-based experiments")
		scaleOpt = flag.Float64("scale", 1, "scale factor on the single-node mesh")
	)
	flag.Parse()

	opt := bench.Options{
		Out:          os.Stdout,
		MaxThreads:   *threads,
		Quick:        *quick,
		CFL0:         *cfl,
		RanksPerNode: *rpn,
		ClusterSteps: *steps,
	}
	if !*quick {
		opt.SingleSpec = mesh.SpecC()
		if *scaleOpt != 1 {
			opt.SingleSpec = mesh.ScaleSpec(opt.SingleSpec, *scaleOpt)
		}
		if *large {
			opt.ClusterSpec = mesh.SpecD()
		} else {
			opt.ClusterSpec = mesh.SpecC()
		}
	}
	if *nodes != "" {
		for _, tok := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "experiments: bad -nodes entry %q\n", tok)
				os.Exit(1)
			}
			opt.NodeCounts = append(opt.NodeCounts, n)
		}
	}

	if err := bench.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
