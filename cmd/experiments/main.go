// Command experiments regenerates the paper's tables and figures: Table I,
// Table II, and Figures 5-11. Each experiment prints a "paper reference"
// line followed by the measured results, so the output doubles as the raw
// material for EXPERIMENTS.md.
//
// Examples:
//
//	experiments -exp all                      # everything, default sizes
//	experiments -exp fig6a -threads 16        # one experiment
//	experiments -exp fig9 -nodes 1,4,16,64,256 -large
//	experiments -quick                        # tiny meshes (CI smoke run)
//	experiments -quick -json                  # plus BENCH_<exp>.json artifacts
//	experiments -exp fig5 -cpuprofile fig5.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fun3d/internal/bench"
	"fun3d/internal/mesh"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, "+strings.Join(bench.Experiments(), ", "))
		threads  = flag.Int("threads", runtime.NumCPU(), "max threads for sweeps")
		quick    = flag.Bool("quick", false, "tiny meshes, short sweeps")
		large    = flag.Bool("large", false, "use Mesh-D' for the cluster experiments (slow)")
		nodes    = flag.String("nodes", "", "comma-separated node counts for fig9-11")
		rpn      = flag.Int("ranks-per-node", 0, "ranks per simulated node (default 4; paper used 16)")
		steps    = flag.Int("cluster-steps", 0, "pseudo-time steps per cluster run")
		cfl      = flag.Float64("cfl", 10, "initial CFL for solve-based experiments")
		gmres    = flag.String("gmres", "classical", "GMRES variant: classical, pipelined (one Allreduce per iteration)")
		pfdist   = flag.Int("pfdist", 0, "flux prefetch lookahead distance in edges (0 = kernel default)")
		topo     = flag.String("topology", "", "interconnect hop model for the scaling campaign: flat, fattree, dragonfly")
		place    = flag.String("placement", "", "rank-to-node placement for the scaling campaign: block, roundrobin, locality (halo-graph-driven)")
		scaleOpt = flag.Float64("scale", 1, "scale factor on the single-node mesh")
		jsonOut  = flag.Bool("json", false, "write BENCH_<experiment>.json artifacts to the current directory")
		jsonDir  = flag.String("json-dir", "", "directory for JSON artifacts (implies -json)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile (with per-experiment pprof labels) to this file")
	)
	flag.Parse()

	if *gmres != "classical" && *gmres != "pipelined" {
		fmt.Fprintf(os.Stderr, "experiments: unknown -gmres %q (want classical or pipelined)\n", *gmres)
		os.Exit(1)
	}
	opt := bench.Options{
		Out:          os.Stdout,
		MaxThreads:   *threads,
		Quick:        *quick,
		CFL0:         *cfl,
		RanksPerNode: *rpn,
		ClusterSteps: *steps,
		GMRES:        *gmres,
		PFDist:       *pfdist,
		Topology:     *topo,
		Placement:    *place,
	}
	if *jsonDir != "" {
		opt.JSONDir = *jsonDir
	} else if *jsonOut {
		opt.JSONDir = "."
	}
	if opt.JSONDir != "" {
		if err := os.MkdirAll(opt.JSONDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if !*quick {
		opt.SingleSpec = mesh.SpecC()
		if *scaleOpt != 1 {
			opt.SingleSpec = mesh.ScaleSpec(opt.SingleSpec, *scaleOpt)
		}
		if *large {
			opt.ClusterSpec = mesh.SpecD()
		} else {
			opt.ClusterSpec = mesh.SpecC()
		}
	}
	if *nodes != "" {
		for _, tok := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "experiments: bad -nodes entry %q\n", tok)
				os.Exit(1)
			}
			opt.NodeCounts = append(opt.NodeCounts, n)
		}
	}

	// The pprof label keys each experiment's samples, so a single profile
	// covering -exp all can be sliced per figure (go tool pprof -tagfocus).
	var runErr error
	pprof.Do(context.Background(), pprof.Labels("experiment", *exp), func(_ context.Context) {
		runErr = bench.Run(*exp, opt)
	})
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}
