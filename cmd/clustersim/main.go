// Command clustersim runs one simulated multi-node configuration and
// prints the virtual-time breakdown — a direct handle on the machinery
// behind Figures 9-11.
//
// Examples:
//
//	clustersim -ranks 64                       # 64 MPI-only optimized ranks
//	clustersim -ranks 16 -baseline             # unoptimized kernel rates
//	clustersim -ranks 8 -threads-per-rank 4    # hybrid MPI+threads
//	clustersim -ranks 16 -overlap              # nonblocking halo, interior overlap
//	clustersim -ranks 64 -allreduce flat       # linear collective cost model
//	clustersim -ranks 256 -allreduce hierarchical -topology fattree
//	                                           # SMP-aware collective on the fat-tree hop model
//	clustersim -mesh d -ranks 256 -steps 3
//	clustersim -ranks 16 -json run.json        # machine-readable artifact
//	clustersim -ranks 8 -noise 0.5             # deterministic straggler noise
//	clustersim -ranks 8 -mtbf 0.05 -steps 5    # injected crashes + checkpoint/restart
//	clustersim -ranks 16 -order hilbert -fused # SFC pre-ordering + fused flux rate
package main

import (
	"flag"
	"fmt"
	"os"

	"fun3d"
	"fun3d/internal/mesh"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

func main() {
	var (
		meshName = flag.String("mesh", "c", "mesh preset: tiny, c, d")
		scale    = flag.Float64("scale", 1, "mesh scale factor")
		ranks    = flag.Int("ranks", 16, "simulated MPI ranks")
		rpn      = flag.Int("ranks-per-node", 16, "ranks per node (network locality)")
		tpr      = flag.Int("threads-per-rank", 1, "threads per rank (hybrid mode: real pool-threaded kernels)")
		overlap  = flag.Bool("overlap", false, "overlap halo exchange with interior-edge compute")
		allred   = flag.String("allreduce", "tree", "Allreduce cost model: tree, flat, hierarchical")
		topo     = flag.String("topology", "flat", "interconnect hop model: flat, fattree, dragonfly")
		podSize  = flag.Int("pod-size", 16, "nodes per fat-tree leaf pod")
		grpSize  = flag.Int("group-size", 16, "nodes per dragonfly group")
		hopLat   = flag.Float64("hop-latency", 1.0e-6, "added latency per extra switch hop, seconds")
		place    = flag.String("placement", "block", "rank-to-node placement: block, roundrobin, locality (halo-graph-driven)")
		gmres    = flag.String("gmres", "classical", "GMRES variant: classical, pipelined (one Allreduce per iteration)")
		baseline = flag.Bool("baseline", false, "baseline kernel rates instead of optimized")
		order    = flag.String("order", "rcm", "vertex ordering before decomposition: natural, rcm, morton, hilbert")
		fused    = flag.Bool("fused", false, "rescale the flux rate by the measured fused-pipeline speedup")
		staged   = flag.Bool("staged", false, "rescale the flux rate by the measured staged-pipeline speedup")
		natural  = flag.Bool("natural", false, "natural-block decomposition instead of multilevel")
		steps    = flag.Int("steps", 0, "fixed pseudo-time steps (0 = run to convergence)")
		fill     = flag.Int("fill", 0, "ILU fill level per rank")
		dedup    = flag.Bool("dedup", false, "content-deduplicate each rank's ILU block stores (bit-identical results)")
		cfl      = flag.Float64("cfl", 20, "initial CFL")
		jsonOut  = flag.String("json", "", "write a schema-versioned JSON artifact (prof.Artifact) to this path")
		noise    = flag.Float64("noise", 0, "straggler noise amplitude: compute/p2p intervals stretched by up to this fraction")
		mtbf     = flag.Float64("mtbf", 0, "mean virtual time between injected rank crashes, seconds (0 = no crashes)")
		ckEvery  = flag.Int("checkpoint-every", 1, "in-memory checkpoint interval in pseudo-time steps")
		faultSd  = flag.Uint64("fault-seed", 42, "seed for the deterministic fault plan")
	)
	flag.Parse()

	var spec fun3d.MeshSpec
	switch *meshName {
	case "tiny":
		spec = fun3d.MeshTiny()
	case "c":
		spec = fun3d.MeshC()
	case "d":
		spec = fun3d.MeshD()
	default:
		fatal(fmt.Errorf("unknown mesh %q", *meshName))
	}
	if *scale != 1 {
		spec = fun3d.ScaleMesh(spec, *scale)
	}
	m, err := fun3d.GenerateMesh(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println("mesh:", m.ComputeStats())

	// The vertex ordering is applied to the global mesh before
	// decomposition, mirroring what a production preprocessor would do.
	kind, err := fun3d.ParseOrdering(*order)
	if err != nil {
		fatal(err)
	}
	m, _, ostats, err := fun3d.ReorderMesh(m, kind)
	if err != nil {
		fatal(err)
	}
	fmt.Println("ordering:", ostats)

	fmt.Println("calibrating kernel rates on this machine...")
	sample, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		fatal(err)
	}
	rates, err := perfmodel.Measure(sample, 1, false)
	if err != nil {
		fatal(err)
	}
	var vecRates *perfmodel.Rates
	if !*baseline {
		opt := perfmodel.DeriveOptimized(rates)
		if *tpr > 1 {
			threaded, err := perfmodel.Measure(sample, *tpr, false)
			if err != nil {
				fatal(err)
			}
			seqVec := opt
			vecRates = &seqVec // hybrid: Vec* primitives stay sequential
			opt = perfmodel.ThreadScale(opt, rates, threaded)
		}
		rates = opt
	}
	if *fused && *staged {
		fatal(fmt.Errorf("-fused and -staged are mutually exclusive ladder rungs"))
	}
	if *fused {
		// The simulated numerics are first-order, so the fused pipeline
		// enters as a rate calibration: measure three-sweep vs fused
		// seconds/edge on the sample and rescale the flux rate by the ratio.
		un, fu, err := perfmodel.MeasureFused(sample, *tpr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fused pipeline: %.0fns/edge vs three-sweep %.0fns/edge (%.2fX)\n",
			1e9*fu, 1e9*un, un/fu)
		rates.FluxPerEdge *= fu / un
	}
	if *staged {
		// Same first-order rescaling convention as -fused, calibrated
		// against the hierarchical staged pipeline instead.
		un, st, err := perfmodel.MeasureStaged(sample, *tpr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("staged pipeline: %.0fns/edge vs three-sweep %.0fns/edge (%.2fX)\n",
			1e9*st, 1e9*un, un/st)
		rates.FluxPerEdge *= st / un
	}
	fmt.Printf("rates: flux=%.0fns/edge ilu=%.0fns/blk trsv=%.1fns/blk\n",
		1e9*rates.FluxPerEdge, 1e9*rates.ILUPerBlock, 1e9*rates.TRSVPerBlock)

	net := fun3d.StampedeNetwork()
	net.RanksPerNode = *rpn
	if net.Algo, err = fun3d.ParseAllreduce(*allred); err != nil {
		fatal(err)
	}
	if net.Topo, err = fun3d.ParseTopology(*topo); err != nil {
		fatal(err)
	}
	if net.Place, err = fun3d.ParsePlacement(*place); err != nil {
		fatal(err)
	}
	net.PodSize = *podSize
	net.GroupSize = *grpSize
	if net.Topo != fun3d.TopoFlat {
		net.HopLatency = *hopLat
	}
	switch *gmres {
	case "classical", "pipelined":
	default:
		fatal(fmt.Errorf("unknown -gmres %q (want classical or pipelined)", *gmres))
	}
	cfg := fun3d.ClusterConfig{
		Ranks:          *ranks,
		ThreadsPerRank: *tpr,
		Overlap:        *overlap,
		Natural:        *natural,
		Rates:          rates,
		VecRates:       vecRates,
		Net:            net,
		FillLevel:      *fill,
		Dedup:          *dedup,
		CFL0:           *cfl,
		Seed:           11,
		Pipelined:      *gmres == "pipelined",
		Faults: fun3d.FaultConfig{
			Seed:  *faultSd,
			Noise: *noise,
			MTBF:  *mtbf,
		},
		CheckpointEvery: *ckEvery,
	}
	if *steps > 0 {
		cfg.MaxSteps = *steps
		cfg.RelTol = 1e-30
	}
	res, err := fun3d.SimulateCluster(m, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nranks=%d nodes=%d steps=%d linear-iters=%d converged=%v\n",
		*ranks, (*ranks+*rpn-1)/(*rpn), res.Steps, res.LinearIters, res.Converged)
	fmt.Printf("||R|| %.3e -> %.3e\n", res.RNorm0, res.RNormFinal)
	fmt.Printf("virtual time      %.4fs\n", res.Time)
	fmt.Printf("  compute         %.4fs\n", res.ComputeTime)
	fmt.Printf("  allreduce       %.4fs (%d collectives, %d stages, %d hops)\n",
		res.AllreduceTime, res.Allreduces, res.AllreduceStages, res.AllreduceHops)
	hopsPerMsg := 0.0
	if res.Msgs > 0 {
		hopsPerMsg = float64(res.PtPHops) / float64(res.Msgs)
	}
	fmt.Printf("  point-to-point  %.4fs (%d msgs, %.1f MB, %.2f hops/msg)\n",
		res.PtPTime, res.Msgs, float64(res.Bytes)/1e6, hopsPerMsg)
	fmt.Printf("  route books     cross-node %.1f MB, cross-pod %.1f MB\n",
		float64(res.PtPCrossNodeBytes)/1e6, float64(res.PtPCrossPodBytes)/1e6)
	fmt.Printf("communication fraction: %.1f%%\n", 100*res.CommFraction())
	if *noise > 0 || *mtbf > 0 {
		fmt.Printf("faults: %d injected, %d restarts, %d recomputed steps, %.4fs straggler noise/rank\n",
			res.FaultsInjected, res.Restarts, res.RecomputedSteps, res.NoiseTime)
	}

	if *jsonOut != "" {
		art := prof.NewArtifact("clustersim", res.Metrics)
		art.Mesh = &prof.MeshInfo{Vertices: m.NumVertices(), Edges: m.NumEdges()}
		art.Config = map[string]any{
			"ranks":            *ranks,
			"ranks_per_node":   *rpn,
			"threads_per_rank": *tpr,
			"overlap":          *overlap,
			"allreduce":        *allred,
			"topology":         *topo,
			"placement":        *place,
			"gmres":            *gmres,
			"baseline":         *baseline,
			"order":            kind.String(),
			"fused":            *fused,
			"staged":           *staged,
			"fill":             *fill,
			"steps":            res.Steps,
			"time_axis":        "virtual",
		}
		if *noise > 0 || *mtbf > 0 {
			art.Config["noise"] = *noise
			art.Config["mtbf"] = *mtbf
			art.Config["checkpoint_every"] = *ckEvery
			art.Config["fault_seed"] = *faultSd
		}
		if err := art.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
