// Quickstart: generate a small wing mesh, solve the incompressible Euler
// flow with the optimized shared-memory configuration, and print the
// convergence history — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"runtime"

	"fun3d"
)

func main() {
	// 1. A deterministic unstructured tetrahedral mesh around a swept wing.
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh:", m.ComputeStats())

	// 2. A solver in the paper's fully optimized configuration: METIS
	//    owner-writes threading, AoS node data, SIMD edge batching,
	//    P2P-sparsified ILU/TRSV, threaded vector primitives.
	solver, err := fun3d.NewSolver(m, fun3d.Optimized(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()
	fmt.Println("config:", solver.Describe())

	// 3. Pseudo-transient Newton-Krylov to steady state.
	result, err := solver.Run(fun3d.SolveOptions{MaxSteps: 50, CFL0: 20})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range result.History.Steps {
		fmt.Printf("  step %2d: ||R|| = %.3e  (CFL %.0f, %d linear iters)\n",
			s.Step, s.RNorm, s.CFL, s.LinearIters)
	}
	fmt.Printf("converged=%v in %v; residual dropped %.1e -> %.1e\n",
		result.History.Converged, result.WallTime,
		result.History.RNorm0, result.History.RNormFinal)

	// 4. Where did the time go? (the paper's Fig-5 view)
	fmt.Printf("\nkernel profile:\n%s", solver.Profile())
}
