// Scaling: simulate a strong-scaling sweep of the distributed solver from
// the public API — the machinery behind the paper's Figures 9 and 10. The
// numerics are real (rank-local ILU, halo exchanges, Allreduce inner
// products); the time axis is a calibrated virtual clock.
package main

import (
	"fmt"
	"log"

	"fun3d"
)

func main() {
	m, err := fun3d.GenerateMesh(fun3d.ScaleMesh(fun3d.MeshC(), 0.25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh:", m.ComputeStats())

	// Calibrate per-rank kernel rates by running the real kernels here.
	sample, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		log.Fatal(err)
	}
	rates, err := fun3d.MeasureRates(sample, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated: flux %.0f ns/edge, trsv %.1f ns/block\n\n",
		1e9*rates.FluxPerEdge, 1e9*rates.TRSVPerBlock)

	net := fun3d.StampedeNetwork()
	net.RanksPerNode = 8

	fmt.Println("ranks   time      speedup  efficiency  comm%  allreduce%  iters")
	var t1 float64
	for _, ranks := range []int{1, 2, 4, 8, 16, 32, 64} {
		res, err := fun3d.SimulateCluster(m, fun3d.ClusterConfig{
			Ranks:    ranks,
			Rates:    rates,
			Net:      net,
			MaxSteps: 3,
			RelTol:   1e-30, // fixed work at every scale
			CFL0:     20,
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		if ranks == 1 {
			t1 = res.Time
		}
		sp := t1 / res.Time
		fmt.Printf("%5d  %8.4fs  %6.2fX  %9.0f%%  %4.0f%%  %9.0f%%  %5d\n",
			ranks, res.Time, sp, 100*sp/float64(ranks),
			100*res.CommFraction(),
			100*res.AllreduceTime/(res.ComputeTime+res.PtPTime+res.AllreduceTime),
			res.LinearIters)
	}
	fmt.Println("\nNote how the Allreduce share grows with scale — the Krylov")
	fmt.Println("collectives are the scaling bottleneck the paper identifies.")

	// Halo overlap: post the exchange nonblocking and compute interior
	// edges while it flies. The numerics are bit-identical; only the
	// modeled point-to-point wait shrinks.
	fmt.Println("\nhalo overlap at 32 ranks (identical numerics):")
	for _, overlap := range []bool{false, true} {
		res, err := fun3d.SimulateCluster(m, fun3d.ClusterConfig{
			Ranks:    32,
			Overlap:  overlap,
			Rates:    rates,
			Net:      net,
			MaxSteps: 3,
			RelTol:   1e-30,
			CFL0:     20,
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		mode := "blocking  "
		if overlap {
			mode = "overlapped"
		}
		fmt.Printf("  %s  halo wait %8.3fms   total %.4fs\n",
			mode, 1e3*res.PtPTime, res.Time)
	}
}
