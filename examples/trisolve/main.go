// Trisolve: the sparse-recurrence substrate on its own — build the
// first-order Jacobian in 4x4 BSR form, factor it with block ILU(0) and
// ILU(1), and solve triangular systems under the three schedules the paper
// compares (sequential, level-scheduled with barriers, P2P-sparsified),
// reporting the DAG parallelism of Table II.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/sparse"
)

func main() {
	m, err := mesh.Generate(mesh.ScaleSpec(mesh.SpecC(), 0.25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh:", m.ComputeStats())

	// Assemble a real Jacobian with a pseudo-time shift.
	qInf := physics.FreeStream(3.06)
	part, _ := flux.NewPartition(m, 1, flux.Sequential, 0)
	k := flux.NewKernels(m, 5, qInf, nil, part, flux.Config{})
	q := make([]float64, m.NumVertices()*4)
	rng := rand.New(rand.NewSource(1))
	for v := 0; v < m.NumVertices(); v++ {
		for c := 0; c < 4; c++ {
			q[v*4+c] = qInf[c] + 0.05*rng.NormFloat64()
		}
	}
	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	k.Jacobian(q, a)
	dt := make([]float64, m.NumVertices())
	for i := range dt {
		dt[i] = 0.01
	}
	flux.AddPseudoTimeTerm(a, m.Vol, dt)
	fmt.Printf("jacobian: %d block rows, %d 4x4 blocks\n\n", a.N, a.NNZBlocks())

	nThreads := runtime.NumCPU()
	pool := par.NewPool(nThreads)
	defer pool.Close()

	b := make([]float64, a.N*4)
	x := make([]float64, a.N*4)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	for _, fill := range []int{0, 1} {
		pat, err := sparse.SymbolicILU(a, fill)
		if err != nil {
			log.Fatal(err)
		}
		f, err := sparse.NewFactorPattern(pat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ILU(%d): %d blocks (fill ratio %.2f), DAG parallelism %.0fX, %d wavefronts\n",
			fill, f.M.NNZBlocks(), float64(f.M.NNZBlocks())/float64(a.NNZBlocks()),
			sparse.DAGParallelism(f.M), sparse.CriticalPathLevels(f.M))

		// Factorization under the three schedules.
		tSeq := timeIt(func() { must(f.FactorizeILU(a)) })
		ls := sparse.NewLevelSchedule(f.M)
		tLvl := timeIt(func() { must(f.FactorizeILULevel(pool, ls, a)) })
		ps := sparse.NewP2PSchedule(f.M, nThreads)
		tP2P := timeIt(func() { must(f.FactorizeILUP2P(pool, ps, a)) })
		fmt.Printf("  factor: seq %v | level %v (%.2fX) | p2p %v (%.2fX)\n",
			tSeq.Round(time.Microsecond),
			tLvl.Round(time.Microsecond), float64(tSeq)/float64(tLvl),
			tP2P.Round(time.Microsecond), float64(tSeq)/float64(tP2P))

		// Triangular solves.
		sSeq := timeIt(func() { f.Solve(b, x) })
		sLvl := timeIt(func() { f.SolveLevel(pool, ls, b, x) })
		sP2P := timeIt(func() { f.SolveP2P(pool, ps, b, x) })
		fmt.Printf("  trsv:   seq %v | level %v (%.2fX) | p2p %v (%.2fX)\n",
			sSeq.Round(time.Microsecond),
			sLvl.Round(time.Microsecond), float64(sSeq)/float64(sLvl),
			sP2P.Round(time.Microsecond), float64(sSeq)/float64(sP2P))

		// All three produce bit-identical solutions.
		f.Solve(b, x)
		ref := append([]float64(nil), x...)
		f.SolveP2P(pool, ps, b, x)
		for i := range x {
			if x[i] != ref[i] {
				log.Fatalf("p2p solve differs at %d", i)
			}
		}
		fmt.Println("  (sequential and P2P solutions bit-identical)")
		fmt.Println()
	}
}

func timeIt(f func()) time.Duration {
	f() // warm up
	best := time.Duration(1<<62 - 1)
	for r := 0; r < 5; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
