// Wingflow: the domain-science example — solve the flow over the
// ONERA-M6-like wing at the classic validation angle of attack (3.06°),
// second order with a Venkatakrishnan limiter, then extract the surface
// pressure distribution and report the suction peak and stagnation
// pressure, chord station by chord station.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"

	"fun3d"
)

func main() {
	// A finer mesh than quickstart so the wing surface has resolution.
	spec := fun3d.ScaleMesh(fun3d.MeshC(), 0.25)
	m, err := fun3d.GenerateMesh(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh:", m.ComputeStats())

	cfg := fun3d.Optimized(runtime.NumCPU())
	cfg.SecondOrder = true
	cfg.Limiter = true
	cfg.AlphaDeg = 3.06
	solver, err := fun3d.NewSolver(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()

	result, err := solver.Run(fun3d.SolveOptions{MaxSteps: 80, CFL0: 10, RelTol: 1e-5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: converged=%v steps=%d linear iters=%d wall=%v\n",
		result.History.Converged, len(result.History.Steps),
		result.History.LinearIters, result.WallTime)

	// Surface pressure: Cp = 2p for unit freestream speed.
	samples := solver.SurfacePressure()
	if len(samples) == 0 {
		log.Fatal("no wall samples — mesh too coarse to resolve the wing")
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].X < samples[j].X })

	minCp, maxCp := samples[0], samples[0]
	for _, s := range samples {
		if s.Cp < minCp.Cp {
			minCp = s
		}
		if s.Cp > maxCp.Cp {
			maxCp = s
		}
	}
	f := solver.SurfaceForces(0)
	fmt.Printf("\nintegrated loads: CL=%.4f CD=%.4f (Sref=%.4f)\n", f.CL, f.CD, f.SRef)

	fmt.Printf("\nwing surface: %d sample points\n", len(samples))
	fmt.Printf("suction peak   Cp=%.3f at (x=%.2f, y=%.2f, z=%.2f)\n",
		minCp.Cp, minCp.X, minCp.Y, minCp.Z)
	fmt.Printf("max pressure   Cp=%.3f at (x=%.2f, y=%.2f, z=%.2f)\n",
		maxCp.Cp, maxCp.X, maxCp.Y, maxCp.Z)

	// Chordwise Cp profile binned along x.
	const bins = 10
	x0, x1 := samples[0].X, samples[len(samples)-1].X
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for _, s := range samples {
		b := int(float64(bins) * (s.X - x0) / (x1 - x0 + 1e-12))
		if b >= bins {
			b = bins - 1
		}
		sums[b] += s.Cp
		counts[b]++
	}
	fmt.Println("\nchordwise mean Cp:")
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		fmt.Printf("  x in [%.2f,%.2f): Cp = %+.3f  (%d pts)\n",
			x0+(x1-x0)*float64(b)/bins, x0+(x1-x0)*float64(b+1)/bins,
			sums[b]/float64(counts[b]), counts[b])
	}
}
