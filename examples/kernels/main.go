// Kernels: a tour of the edge-based kernel layer — the flux kernel under
// each of the paper's threading strategies, with timing and the
// replication-overhead diagnostics of Fig 6. This example reaches below
// the public facade into the building-block packages.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/reorder"
)

func main() {
	m0, err := mesh.Generate(mesh.ScaleSpec(mesh.SpecC(), 0.25))
	if err != nil {
		log.Fatal(err)
	}
	// RCM first, as the solver does.
	perm := reorder.RCM(reorder.Graph{Ptr: m0.AdjPtr, Adj: m0.Adj})
	m := m0.Permute(perm)
	fmt.Println("mesh:", m.ComputeStats())

	nThreads := runtime.NumCPU()
	pool := par.NewPool(nThreads)
	defer pool.Close()

	qInf := physics.FreeStream(3.06)
	q := make([]float64, m.NumVertices()*4)
	for v := 0; v < m.NumVertices(); v++ {
		copy(q[v*4:v*4+4], qInf[:])
		q[v*4] += 0.01 * float64(v%13) // non-trivial pressure field
	}
	res := make([]float64, m.NumVertices()*4)

	fmt.Printf("\nflux kernel, %d threads:\n", nThreads)
	strategies := []flux.Strategy{
		flux.Sequential, flux.Atomic, flux.ReplicateNatural, flux.ReplicateMETIS, flux.Colored,
	}
	var seqTime time.Duration
	for _, s := range strategies {
		part, err := flux.NewPartition(m, nThreads, s, 7)
		if err != nil {
			log.Fatal(err)
		}
		p := pool
		if s == flux.Sequential {
			p = nil
		}
		k := flux.NewKernels(m, 5, qInf, p, part, flux.Config{Strategy: s})
		// warm up + best of 5
		k.Residual(q, nil, nil, res)
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			k.Residual(q, nil, nil, res)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		if s == flux.Sequential {
			seqTime = best
		}
		extra := ""
		if part.Replication > 0 {
			extra = fmt.Sprintf("  (%.1f%% redundant edges)", 100*part.Replication)
		}
		if part.Coloring != nil {
			extra = fmt.Sprintf("  (%d colors)", part.Coloring.NumColors())
		}
		fmt.Printf("  %-18v %8v  %5.2fX%s\n", s, best.Round(time.Microsecond),
			float64(seqTime)/float64(best), extra)
	}

	// The SIMD-batching and prefetch variants on the best strategy.
	fmt.Println("\ncode variants on replicate-METIS:")
	part, _ := flux.NewPartition(m, nThreads, flux.ReplicateMETIS, 7)
	for _, cfg := range []struct {
		name string
		c    flux.Config
	}{
		{"plain", flux.Config{Strategy: flux.ReplicateMETIS}},
		{"+SIMD batch", flux.Config{Strategy: flux.ReplicateMETIS, SIMD: true}},
		{"+prefetch", flux.Config{Strategy: flux.ReplicateMETIS, SIMD: true, Prefetch: true}},
		{"SoA layout", flux.Config{Strategy: flux.ReplicateMETIS, SoANodeData: true}},
	} {
		k := flux.NewKernels(m, 5, qInf, pool, part, cfg.c)
		qq := q
		if cfg.c.SoANodeData {
			qq = flux.AoSToSoA(q, m.NumVertices())
		}
		k.Residual(qq, nil, nil, res)
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			k.Residual(qq, nil, nil, res)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		fmt.Printf("  %-12s %8v\n", cfg.name, best.Round(time.Microsecond))
	}
}
